package sptrsv

import (
	"math"
	"testing"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
	"msgroofline/internal/spmat"
)

func testMatrix(t *testing.T) *spmat.SupTri {
	t.Helper()
	m, err := spmat.Generate(spmat.Params{N: 1200, MeanSnode: 16, Fill: 1.2, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mc(t *testing.T, name string) *machine.Config {
	t.Helper()
	c, err := machine.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func verify(t *testing.T, m *spmat.SupTri, x []float64) {
	t.Helper()
	want, err := m.SolveSerial(Rhs(m.N))
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range x {
		if d := math.Abs(x[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Fatalf("solution deviates from serial by %g", worst)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil config should fail")
	}
	if _, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Matrix: testMatrix(t), Ranks: 0}); err == nil {
		t.Fatal("0 ranks should fail")
	}
	if _, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.Shmem, Matrix: testMatrix(t), Ranks: 2}); err == nil {
		t.Fatal("shmem transport on CPU machine should fail")
	}
}

func TestRemoteIncomingDeterministic(t *testing.T) {
	m := testMatrix(t)
	per, slots := remoteIncoming(m, 4)
	per2, slots2 := remoteIncoming(m, 4)
	if len(slots) != len(slots2) {
		t.Fatal("nondeterministic enumeration")
	}
	for e, s := range slots {
		if slots2[e] != s {
			t.Fatal("slot mismatch")
		}
		if owner(e.child, 4) == owner(e.parent, 4) {
			t.Fatal("local edge enumerated as remote")
		}
	}
	total := 0
	for r := range per {
		total += len(per[r])
		if len(per[r]) != len(per2[r]) {
			t.Fatal("per-rank count mismatch")
		}
	}
	if total != len(slots) {
		t.Fatal("slot count mismatch")
	}
}

func TestTwoSidedSolveCorrectSingleRank(t *testing.T) {
	m := testMatrix(t)
	res, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Matrix: m, Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, m, res.X)
	if res.Comm.Messages != 0 {
		t.Fatalf("single rank sent %d messages", res.Comm.Messages)
	}
}

func TestTwoSidedSolveCorrectParallel(t *testing.T) {
	m := testMatrix(t)
	for _, p := range []int{2, 4, 8} {
		res, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Matrix: m, Ranks: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		verify(t, m, res.X)
		if res.Comm.Messages == 0 {
			t.Fatalf("P=%d: no messages traced", p)
		}
	}
}

func TestOneSidedSolveCorrect(t *testing.T) {
	m := testMatrix(t)
	for _, p := range []int{2, 8} {
		res, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.OneSided, Matrix: m, Ranks: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		verify(t, m, res.X)
	}
}

func TestGPUSolveCorrect(t *testing.T) {
	m := testMatrix(t)
	for _, p := range []int{1, 4} {
		res, err := Run(Config{Machine: mc(t, "perlmutter-gpu"), Transport: comm.Shmem, Matrix: m, Ranks: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		verify(t, m, res.X)
	}
}

func TestOneMessagePerSync(t *testing.T) {
	// Table II: SpTRSV has 1 msg/sync.
	m := testMatrix(t)
	res, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Matrix: m, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.MsgsPerSync < 0.99 || res.Comm.MsgsPerSync > 1.01 {
		t.Fatalf("msg/sync = %.2f, want 1", res.Comm.MsgsPerSync)
	}
}

func TestMessageSizesMatchDAG(t *testing.T) {
	m := testMatrix(t)
	res, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Matrix: m, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	per, _ := remoteIncoming(m, 4)
	want := 0
	for _, e := range per {
		want += len(e)
	}
	if res.Comm.Messages != want {
		t.Fatalf("messages = %d, want %d (one per remote edge)", res.Comm.Messages, want)
	}
	if res.Comm.MinBytes < 8 || res.Comm.MaxBytes > int64(8*maxSnodeSize(m)) {
		t.Fatalf("message sizes [%d, %d] outside supernode range", res.Comm.MinBytes, res.Comm.MaxBytes)
	}
}

func TestOneSidedSlowerThanTwoSided(t *testing.T) {
	// Fig 8 / §III-B: one-sided SpTRSV is slower due to 4x MPI ops.
	m := testMatrix(t)
	for _, p := range []int{4, 16} {
		two, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Matrix: m, Ranks: p})
		if err != nil {
			t.Fatal(err)
		}
		one, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.OneSided, Matrix: m, Ranks: p})
		if err != nil {
			t.Fatal(err)
		}
		if one.Elapsed <= two.Elapsed {
			t.Fatalf("P=%d: one-sided (%v) should be slower than two-sided (%v)",
				p, one.Elapsed, two.Elapsed)
		}
	}
}

func TestPollingCostMatters(t *testing.T) {
	// Ablation: zeroing the Listing-1 scan cost must speed up the
	// one-sided solve (DESIGN.md ablation #2).
	m := testMatrix(t)
	withPoll, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.OneSided, Matrix: m, Ranks: 16})
	if err != nil {
		t.Fatal(err)
	}
	freePoll, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.OneSided, Matrix: m, Ranks: 16, PollCheck: -1})
	if err != nil {
		t.Fatal(err)
	}
	if freePoll.Elapsed >= withPoll.Elapsed {
		t.Fatalf("free polling (%v) should beat charged polling (%v)", freePoll.Elapsed, withPoll.Elapsed)
	}
}

func TestPerlmutterGPUBeatsSummitGPU(t *testing.T) {
	// Fig 8: at 4 GPUs, Perlmutter (NVLink3) clearly beats Summit
	// (NVLink2 + dumbbell) for the latency-bound solve.
	m := testMatrix(t)
	pm, err := Run(Config{Machine: mc(t, "perlmutter-gpu"), Transport: comm.Shmem, Matrix: m, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Run(Config{Machine: mc(t, "summit-gpu"), Transport: comm.Shmem, Matrix: m, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, m, sm.X)
	if sm.Elapsed <= pm.Elapsed {
		t.Fatalf("Summit GPU (%v) should be slower than Perlmutter GPU (%v)", sm.Elapsed, pm.Elapsed)
	}
}

func TestDeterministicSolveTime(t *testing.T) {
	m := testMatrix(t)
	a, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Matrix: m, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Matrix: m, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("nondeterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

func TestNotifiedAccessSolveCorrect(t *testing.T) {
	m := testMatrix(t)
	for _, p := range []int{2, 8} {
		res, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.Notified, Matrix: m, Ranks: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		verify(t, m, res.X)
	}
}

func TestNotifiedBeatsTwoSided(t *testing.T) {
	// The paper's §V inference, quantified: hardware put-with-signal
	// makes one-sided SpTRSV beat two-sided (Liu et al. report 1.5x
	// with foMPI). Our notified transport has lower per-op overhead
	// and a single flight per message.
	m := testMatrix(t)
	for _, p := range []int{8, 16} {
		two, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Matrix: m, Ranks: p})
		if err != nil {
			t.Fatal(err)
		}
		ntf, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.Notified, Matrix: m, Ranks: p})
		if err != nil {
			t.Fatal(err)
		}
		one, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.OneSided, Matrix: m, Ranks: p})
		if err != nil {
			t.Fatal(err)
		}
		if ntf.Elapsed >= two.Elapsed {
			t.Fatalf("P=%d: notified (%v) should beat two-sided (%v)", p, ntf.Elapsed, two.Elapsed)
		}
		if ntf.Elapsed >= one.Elapsed {
			t.Fatalf("P=%d: notified (%v) should crush the 4-op protocol (%v)", p, ntf.Elapsed, one.Elapsed)
		}
		ratio := float64(two.Elapsed) / float64(ntf.Elapsed)
		if ratio < 1.05 || ratio > 3 {
			t.Fatalf("P=%d: notified speedup over two-sided = %.2fx, want ~1.5x band", p, ratio)
		}
	}
}

func TestTrafficMatrixPopulated(t *testing.T) {
	m := testMatrix(t)
	res, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Matrix: m, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix == nil || res.Matrix.Ranks != 4 {
		t.Fatal("traffic matrix missing")
	}
	var total int64
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			total += res.Matrix.Messages[s][d]
			if s == d && res.Matrix.Messages[s][d] != 0 {
				t.Fatal("self traffic recorded for block-cyclic SpTRSV")
			}
		}
	}
	if int(total) != res.Comm.Messages {
		t.Fatalf("matrix counts %d messages, summary says %d", total, res.Comm.Messages)
	}
	if res.Matrix.Imbalance() < 1 {
		t.Fatalf("imbalance = %v, must be >= 1", res.Matrix.Imbalance())
	}
}
