// Package stats provides the small set of statistics and fitting
// utilities the experiment harness needs: summary statistics,
// percentiles, simple linear regression, and dense least-squares
// solving via normal equations (used to fit LogGP parameters from
// measured sweeps).
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (all values must be
// positive), or NaN for empty or invalid input.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the population variance of xs, or NaN for empty
// input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// LinearFit fits y = a + b*x by ordinary least squares and returns
// (a, b). It returns NaNs when the fit is degenerate (fewer than two
// points or zero variance in x).
func LinearFit(x, y []float64) (a, b float64) {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	num, den := 0.0, 0.0
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	b = num / den
	a = my - b*mx
	return a, b
}

// ErrSingular is returned when a least-squares system has no unique
// solution.
var ErrSingular = errors.New("stats: singular system")

// LeastSquares solves min ||A·c - y||² for c, where A is given row by
// row (each row one observation, columns the regressors). It forms the
// normal equations AᵀA c = Aᵀy and solves by Gaussian elimination with
// partial pivoting, which is plenty for the tiny (<=4 parameter)
// systems this repository fits.
func LeastSquares(rows [][]float64, y []float64) ([]float64, error) {
	if len(rows) == 0 || len(rows) != len(y) {
		return nil, errors.New("stats: mismatched or empty observations")
	}
	k := len(rows[0])
	if k == 0 {
		return nil, errors.New("stats: zero regressors")
	}
	for _, r := range rows {
		if len(r) != k {
			return nil, errors.New("stats: ragged rows")
		}
	}
	// Normal equations.
	ata := make([][]float64, k)
	aty := make([]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	for r, row := range rows {
		for i := 0; i < k; i++ {
			aty[i] += row[i] * y[r]
			for j := 0; j < k; j++ {
				ata[i][j] += row[i] * row[j]
			}
		}
	}
	return SolveLinear(ata, aty)
}

// SolveLinear solves the dense square system M·x = b by Gaussian
// elimination with partial pivoting. M and b are modified in place.
func SolveLinear(m [][]float64, b []float64) ([]float64, error) {
	n := len(m)
	if n == 0 || len(b) != n {
		return nil, errors.New("stats: bad system shape")
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-300 {
			return nil, ErrSingular
		}
		m[col], m[piv] = m[piv], m[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * x[c]
		}
		x[r] = s / m[r][r]
	}
	return x, nil
}

// NonNegativeLeastSquares solves min ||A·c - y||² subject to c >= 0 by
// an active-set strategy specialized for the tiny systems here: it
// tries the unconstrained solution, and while any coefficient is
// negative, pins the most negative one to zero and re-solves on the
// remaining columns. Good enough for 2-4 parameter physical fits where
// negative values are non-physical noise.
func NonNegativeLeastSquares(rows [][]float64, y []float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, errors.New("stats: empty observations")
	}
	k := len(rows[0])
	active := make([]bool, k) // true = pinned to zero
	for iter := 0; iter <= k; iter++ {
		cols := make([]int, 0, k)
		for j := 0; j < k; j++ {
			if !active[j] {
				cols = append(cols, j)
			}
		}
		out := make([]float64, k)
		if len(cols) == 0 {
			return out, nil
		}
		sub := make([][]float64, len(rows))
		for i, r := range rows {
			sr := make([]float64, len(cols))
			for jj, j := range cols {
				sr[jj] = r[j]
			}
			sub[i] = sr
		}
		c, err := LeastSquares(sub, y)
		if err != nil {
			return nil, err
		}
		worst, worstVal := -1, 0.0
		for jj, j := range cols {
			out[j] = c[jj]
			if c[jj] < worstVal {
				worst, worstVal = j, c[jj]
			}
		}
		if worst == -1 {
			return out, nil
		}
		active[worst] = true
	}
	return nil, errors.New("stats: NNLS failed to converge")
}

// RSquared returns the coefficient of determination of predictions
// pred against observations y.
func RSquared(y, pred []float64) float64 {
	if len(y) != len(pred) || len(y) == 0 {
		return math.NaN()
	}
	my := Mean(y)
	ssTot, ssRes := 0.0, 0.0
	for i := range y {
		ssTot += (y[i] - my) * (y[i] - my)
		ssRes += (y[i] - pred[i]) * (y[i] - pred[i])
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}
