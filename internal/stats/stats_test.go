package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummary(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); m != 3 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Median(xs); m != 3 {
		t.Fatalf("Median = %v", m)
	}
	if m := Min(xs); m != 1 {
		t.Fatalf("Min = %v", m)
	}
	if m := Max(xs); m != 5 {
		t.Fatalf("Max = %v", m)
	}
	if v := Variance(xs); v != 2 {
		t.Fatalf("Variance = %v", v)
	}
	if s := StdDev(xs); !almost(s, math.Sqrt2, 1e-12) {
		t.Fatalf("StdDev = %v", s)
	}
	if g := GeoMean([]float64{1, 4}); !almost(g, 2, 1e-12) {
		t.Fatalf("GeoMean = %v", g)
	}
}

func TestEmptyInputs(t *testing.T) {
	for name, v := range map[string]float64{
		"Mean":    Mean(nil),
		"Median":  Median(nil),
		"Min":     Min(nil),
		"Max":     Max(nil),
		"GeoMean": GeoMean(nil),
		"Var":     Variance(nil),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s(nil) = %v, want NaN", name, v)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if p := Percentile(xs, 0); p != 10 {
		t.Fatalf("P0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 40 {
		t.Fatalf("P100 = %v", p)
	}
	if p := Percentile(xs, 50); p != 25 {
		t.Fatalf("P50 = %v", p)
	}
	if p := Percentile([]float64{7}, 99); p != 7 {
		t.Fatalf("single-element percentile = %v", p)
	}
	if !math.IsNaN(Percentile(xs, -1)) || !math.IsNaN(Percentile(xs, 101)) {
		t.Fatal("out-of-range p should give NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b := LinearFit(x, y)
	if !almost(a, 3, 1e-9) || !almost(b, 2, 1e-9) {
		t.Fatalf("fit = (%v, %v), want (3, 2)", a, b)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	a, b := LinearFit([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(a) || !math.IsNaN(b) {
		t.Fatal("expected NaN for zero x-variance")
	}
	a, b = LinearFit([]float64{1}, []float64{2})
	if !math.IsNaN(a) || !math.IsNaN(b) {
		t.Fatal("expected NaN for single point")
	}
}

func TestLeastSquaresRecovers(t *testing.T) {
	// t = 2*u + 3*v + 5*w exactly.
	rng := rand.New(rand.NewSource(7))
	var rows [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		u, v, w := rng.Float64(), rng.Float64(), rng.Float64()
		rows = append(rows, []float64{u, v, w})
		y = append(y, 2*u+3*v+5*w)
	}
	c, err := LeastSquares(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 5}
	for i := range want {
		if !almost(c[i], want[i], 1e-8) {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

func TestLeastSquaresSingular(t *testing.T) {
	rows := [][]float64{{1, 2}, {2, 4}, {3, 6}} // second column = 2x first
	if _, err := LeastSquares(rows, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected singular-system error")
	}
}

func TestLeastSquaresBadShapes(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := LeastSquares([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestSolveLinear(t *testing.T) {
	m := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(m, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 1, 1e-12) || !almost(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestNonNegativeLeastSquares(t *testing.T) {
	// True model has a negative coefficient; NNLS must pin it at 0.
	rng := rand.New(rand.NewSource(11))
	var rows [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		u, v := rng.Float64(), rng.Float64()
		rows = append(rows, []float64{u, v})
		y = append(y, 4*u-0.5*v)
	}
	c, err := NonNegativeLeastSquares(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if c[1] != 0 {
		t.Fatalf("c[1] = %v, want pinned to 0", c[1])
	}
	if c[0] <= 0 {
		t.Fatalf("c[0] = %v, want positive", c[0])
	}
}

func TestNNLSMatchesLSWhenAllPositive(t *testing.T) {
	rows := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	y := []float64{2, 3, 5}
	ls, _ := LeastSquares(rows, y)
	nnls, err := NonNegativeLeastSquares(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ls {
		if !almost(ls[i], nnls[i], 1e-9) {
			t.Fatalf("NNLS %v != LS %v", nnls, ls)
		}
	}
}

func TestRSquared(t *testing.T) {
	y := []float64{1, 2, 3}
	if r := RSquared(y, y); r != 1 {
		t.Fatalf("perfect fit R2 = %v", r)
	}
	if r := RSquared(y, []float64{2, 2, 2}); r != 0 {
		t.Fatalf("mean predictor R2 = %v, want 0", r)
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(pRaw % 101)
		v := Percentile(xs, p)
		return v >= Min(xs) && v <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
