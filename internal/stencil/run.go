package stencil

import (
	"encoding/binary"
	"fmt"
	"math"

	"msgroofline/internal/comm"
	"msgroofline/internal/sim"
	"msgroofline/internal/trace"
)

func encodeFloats(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

func decodeFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Run executes the stencil once on the transport named by
// cfg.Transport. The kernel is transport-agnostic: per iteration each
// rank offers its halos as one BSP exchange — four sends into the
// neighbors' opposite slots, four expected receives into its own —
// and the transport realizes the epoch with its native protocol
// (Isend/Irecv/Waitall, Put+fence, put-with-signal+wait).
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l := layout{px: cfg.PX, py: cfg.PY, nx: cfg.Grid / cfg.PX, ny: cfg.Grid / cfg.PY}
	ranks := cfg.PX * cfg.PY
	// Each of the 4 halo slots must fit the larger halo direction.
	slot := 8 * l.nx
	if 8*l.ny > slot {
		slot = 8 * l.ny
	}
	t, err := comm.New(comm.Spec{
		Machine: cfg.Machine, Kind: cfg.Transport, Ranks: ranks,
		ExchangeSlots: 4, SlotBytes: slot, Shards: cfg.Shards,
		Perturb: cfg.Perturb, Faults: cfg.Faults,
	})
	if err != nil {
		return nil, fmt.Errorf("stencil %s: %w", cfg.Transport, err)
	}
	defer t.Close()
	sums := make([]float64, ranks)
	err = t.Launch(func(ep comm.Endpoint) {
		me := ep.Rank()
		nbrs := l.neighbors(me)
		var tl *tile
		if cfg.Verify {
			tl = newTile(l.nx, l.ny)
			tl.initTile(l, me, cfg.Grid)
		}
		comp := computeTime(l, cfg)
		for iter := 0; iter < cfg.Iters; iter++ {
			var sends []comm.Msg
			var recvs []comm.Expect
			var recvDirs []int
			for dir, nb := range nbrs {
				if nb < 0 {
					continue
				}
				recvs = append(recvs, comm.Expect{Peer: nb, Slot: dir, Bytes: int(l.haloBytes(dir))})
				recvDirs = append(recvDirs, dir)
			}
			for dir, nb := range nbrs {
				if nb < 0 {
					continue
				}
				var payload []byte
				if cfg.Verify {
					payload = encodeFloats(tl.extract(dir))
				} else {
					payload = make([]byte, l.haloBytes(dir))
				}
				// My dir-halo lands in the neighbor's opposite slot.
				sends = append(sends, comm.Msg{Peer: nb, Slot: opposite(dir), Data: payload})
			}
			halos := ep.Exchange(iter, sends, recvs)
			if cfg.Verify {
				for k, data := range halos {
					tl.inject(recvDirs[k], decodeFloats(data))
				}
				tl.step()
			}
			ep.Compute(comp)
		}
		if cfg.Verify {
			sums[me] = tl.checksum()
		}
	})
	if err != nil {
		return nil, fmt.Errorf("stencil %s: %w", cfg.Transport, err)
	}
	res := finish(cfg, t.Elapsed(), t.Recorder(), sums, ranks)
	res.EventDigest = t.Digest()
	return res, nil
}

func finish(cfg Config, elapsed sim.Time, rec *trace.Recorder, sums []float64, ranks int) *Result {
	res := &Result{
		Elapsed: elapsed,
		PerIter: elapsed / sim.Time(cfg.Iters),
		Comm:    rec.Summarize(elapsed),
		Matrix:  rec.Matrix(ranks),
		Ranks:   ranks,
	}
	for _, s := range sums {
		res.Checksum += s
	}
	return res
}
