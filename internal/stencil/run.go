package stencil

import (
	"encoding/binary"
	"fmt"
	"math"

	"msgroofline/internal/machine"
	"msgroofline/internal/mpi"
	"msgroofline/internal/netsim"
	"msgroofline/internal/shmem"
	"msgroofline/internal/sim"
	"msgroofline/internal/trace"
)

// applyChaos installs the conformance harness's opt-in schedule
// perturbation and network fault injection on a freshly built world.
// Both fields are nil in normal runs, leaving behavior untouched.
func (cfg Config) applyChaos(eng *sim.Engine, net *netsim.Network) {
	if cfg.Perturb != nil {
		eng.SetPerturbation(cfg.Perturb)
	}
	if cfg.Faults != nil {
		net.SetFaults(cfg.Faults)
	}
}

func encodeFloats(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

func decodeFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// RunTwoSided executes the two-sided variant: per iteration each rank
// posts Irecv for every neighbor halo, Isends its own four halos, and
// closes the exchange with Waitall before computing.
func RunTwoSided(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l := layout{px: cfg.PX, py: cfg.PY, nx: cfg.Grid / cfg.PX, ny: cfg.Grid / cfg.PY}
	ranks := cfg.PX * cfg.PY
	c, err := mpi.NewComm(cfg.Machine, ranks)
	if err != nil {
		return nil, err
	}
	cfg.applyChaos(c.Engine(), c.World().Inst.Net)
	rec := trace.New()
	c.SetSendHook(func(src, dst int, bytes int64, issue, deliver sim.Time) {
		rec.Record(trace.Event{Src: src, Dst: dst, Bytes: bytes, Issue: issue, Deliver: deliver})
	})
	sums := make([]float64, ranks)
	err = c.Launch(func(r *mpi.Rank) {
		nbrs := l.neighbors(r.Rank())
		var t *tile
		if cfg.Verify {
			t = newTile(l.nx, l.ny)
			t.initTile(l, r.Rank(), cfg.Grid)
		}
		comp := computeTime(l, cfg)
		for iter := 0; iter < cfg.Iters; iter++ {
			var reqs []*mpi.Request
			var recvDirs []int
			var recvs []*mpi.Request
			for dir, nb := range nbrs {
				if nb < 0 {
					continue
				}
				// The neighbor sends its halo tagged with its own
				// direction, which is opposite(dir) from here.
				rq := r.Irecv(nb, iter*4+opposite(dir))
				reqs = append(reqs, rq)
				recvs = append(recvs, rq)
				recvDirs = append(recvDirs, dir)
			}
			for dir, nb := range nbrs {
				if nb < 0 {
					continue
				}
				var payload []byte
				if cfg.Verify {
					payload = encodeFloats(t.extract(dir))
				} else {
					payload = make([]byte, l.haloBytes(dir))
				}
				reqs = append(reqs, r.Isend(nb, iter*4+dir, payload))
			}
			r.Waitall(reqs)
			rec.Sync()
			if cfg.Verify {
				for k, rq := range recvs {
					t.inject(recvDirs[k], decodeFloats(rq.Data))
				}
				t.step()
			}
			r.Compute(comp)
		}
		if cfg.Verify {
			sums[r.Rank()] = t.checksum()
		}
	})
	if err != nil {
		return nil, fmt.Errorf("stencil two-sided: %w", err)
	}
	return finish(cfg, c.Elapsed(), rec, sums, ranks), nil
}

// RunOneSided executes the one-sided variant: four MPI_Put into the
// neighbors' halo windows inside a pair of MPI_Win_fence (§III-A).
func RunOneSided(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l := layout{px: cfg.PX, py: cfg.PY, nx: cfg.Grid / cfg.PX, ny: cfg.Grid / cfg.PY}
	ranks := cfg.PX * cfg.PY
	c, err := mpi.NewComm(cfg.Machine, ranks)
	if err != nil {
		return nil, err
	}
	cfg.applyChaos(c.Engine(), c.World().Inst.Net)
	// Window layout: 2 parities x 4 halo slots, each big enough for
	// the larger halo direction. Iterations alternate parity so a
	// neighbor's epoch-(i+1) put can never land in the slot this rank
	// is still reading epoch-i data from (the fence only separates
	// epochs, not a fast neighbor's next put from a slow reader).
	slot := 8 * l.nx
	if 8*l.ny > slot {
		slot = 8 * l.ny
	}
	win, err := c.NewWin(2 * 4 * slot)
	if err != nil {
		return nil, err
	}
	rec := trace.New()
	win.SetHook(func(src, dst int, bytes int64, issue, deliver sim.Time) {
		rec.Record(trace.Event{Src: src, Dst: dst, Bytes: bytes, Issue: issue, Deliver: deliver})
	})
	sums := make([]float64, ranks)
	err = c.Launch(func(r *mpi.Rank) {
		nbrs := l.neighbors(r.Rank())
		var t *tile
		if cfg.Verify {
			t = newTile(l.nx, l.ny)
			t.initTile(l, r.Rank(), cfg.Grid)
		}
		comp := computeTime(l, cfg)
		for iter := 0; iter < cfg.Iters; iter++ {
			parity := iter % 2
			for dir, nb := range nbrs {
				if nb < 0 {
					continue
				}
				var payload []byte
				if cfg.Verify {
					payload = encodeFloats(t.extract(dir))
				} else {
					payload = make([]byte, l.haloBytes(dir))
				}
				// My dir-halo lands in the neighbor's opposite slot
				// of this iteration's parity bank.
				r.Put(win, nb, (parity*4+opposite(dir))*slot, payload)
			}
			r.Fence(win)
			rec.Sync()
			if cfg.Verify {
				for dir, nb := range nbrs {
					if nb < 0 {
						continue
					}
					off := (parity*4 + dir) * slot
					data := win.Local(r.Rank())[off : off+int(l.haloBytes(dir))]
					t.inject(dir, decodeFloats(data))
				}
				t.step()
			}
			r.Compute(comp)
		}
		if cfg.Verify {
			sums[r.Rank()] = t.checksum()
		}
	})
	if err != nil {
		return nil, fmt.Errorf("stencil one-sided: %w", err)
	}
	return finish(cfg, c.Elapsed(), rec, sums, ranks), nil
}

// RunGPU executes the GPU variant: nvshmem put-with-signal toward
// each neighbor, the receiver waiting on wait_until_all, with
// parity-double-buffered halo slots so no barrier is needed.
func RunGPU(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Machine.Kind != machine.GPU {
		return nil, fmt.Errorf("stencil: RunGPU needs a GPU machine, got %s", cfg.Machine.Name)
	}
	l := layout{px: cfg.PX, py: cfg.PY, nx: cfg.Grid / cfg.PX, ny: cfg.Grid / cfg.PY}
	npes := cfg.PX * cfg.PY
	slot := 8 * l.nx
	if 8*l.ny > slot {
		slot = 8 * l.ny
	}
	// Heap: 2 parities x 4 halo slots, then 2 parities x 4 signals.
	sigBase := 8 * slot
	heap := sigBase + 2*4*8
	j, err := shmem.NewJob(cfg.Machine, npes, heap)
	if err != nil {
		return nil, err
	}
	cfg.applyChaos(j.Engine(), j.World().Inst.Net)
	rec := trace.New()
	j.SetPutHook(func(src, dst int, bytes int64, issue, deliver sim.Time) {
		rec.Record(trace.Event{Src: src, Dst: dst, Bytes: bytes, Issue: issue, Deliver: deliver})
	})
	sums := make([]float64, npes)
	err = j.Launch(func(c *shmem.Ctx) {
		me := c.MyPE()
		nbrs := l.neighbors(me)
		var t *tile
		if cfg.Verify {
			t = newTile(l.nx, l.ny)
			t.initTile(l, me, cfg.Grid)
		}
		comp := computeTime(l, cfg)
		for iter := 0; iter < cfg.Iters; iter++ {
			parity := iter % 2
			for dir, nb := range nbrs {
				if nb < 0 {
					continue
				}
				var payload []byte
				if cfg.Verify {
					payload = encodeFloats(t.extract(dir))
				} else {
					payload = make([]byte, l.haloBytes(dir))
				}
				dstSlot := (parity*4 + opposite(dir)) * slot
				dstSig := sigBase + (parity*4+opposite(dir))*8
				c.PutSignalNBI(nb, dstSlot, payload, dstSig, uint64(iter+1))
			}
			var sigs []int
			for dir, nb := range nbrs {
				if nb < 0 {
					continue
				}
				sigs = append(sigs, sigBase+(parity*4+dir)*8)
			}
			c.WaitUntilAll(sigs, uint64(iter+1))
			rec.Sync()
			if cfg.Verify {
				for dir, nb := range nbrs {
					if nb < 0 {
						continue
					}
					off := (parity*4 + dir) * slot
					data := c.PE().Heap()[off : off+int(l.haloBytes(dir))]
					t.inject(dir, decodeFloats(data))
				}
				t.step()
			}
			c.Compute(comp)
		}
		if cfg.Verify {
			sums[me] = t.checksum()
		}
	})
	if err != nil {
		return nil, fmt.Errorf("stencil gpu: %w", err)
	}
	return finish(cfg, j.Elapsed(), rec, sums, npes), nil
}

func finish(cfg Config, elapsed sim.Time, rec *trace.Recorder, sums []float64, ranks int) *Result {
	res := &Result{
		Elapsed: elapsed,
		PerIter: elapsed / sim.Time(cfg.Iters),
		Comm:    rec.Summarize(elapsed),
		Matrix:  rec.Matrix(ranks),
		Ranks:   ranks,
	}
	for _, s := range sums {
		res.Checksum += s
	}
	return res
}
