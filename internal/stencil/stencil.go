// Package stencil implements the paper's first workload: a 2-D
// 5-point Jacobi stencil on a square grid with a 2-D process
// decomposition (§III-A). Three variants share one communication
// design, as in the paper:
//
//   - two-sided CPU: four MPI_Isend + four MPI_Irecv + MPI_Waitall;
//   - one-sided CPU: four MPI_Put inside a MPI_Win_fence epoch;
//   - GPU: nvshmem put-with-signal + wait_until_all.
//
// The workload runs in two modes. With Verify set, ranks hold real
// local grids, exchange real halos, and the result is checked against
// a serial reference (tests use small grids). Without Verify, the
// paper-scale 16384x16384 grid is modeled: halo messages carry the
// right byte counts and compute time is charged from the cell rate,
// but no giant arrays are allocated.
package stencil

import (
	"fmt"
	"math"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
	"msgroofline/internal/netsim"
	"msgroofline/internal/sim"
	"msgroofline/internal/trace"
)

// CPUCellRate is the memory-bandwidth-limited Jacobi update rate of
// one CPU rank (cells per second). Stencils are bandwidth-bound
// (§III-A), so this models streaming rather than flops.
const CPUCellRate = 5e8

// Config describes one stencil run.
type Config struct {
	// Machine is the target platform from the catalog.
	Machine *machine.Config
	// Transport selects the communication stack the one kernel runs
	// on (comm.TwoSided, comm.OneSided, comm.Notified, comm.Shmem).
	Transport comm.Kind
	// Grid is the global edge length (paper: 16384).
	Grid int
	// Iters is the number of Jacobi iterations.
	Iters int
	// PX, PY decompose ranks into a 2-D grid; PX*PY ranks run.
	PX, PY int
	// Verify allocates real grids and checks the result against the
	// serial reference. Use small Grid values with it.
	Verify bool
	// Shards is the engine shard count recorded on the simulated
	// world (0 means 1; results are byte-identical at every value —
	// see comm.Spec.Shards).
	Shards int
	// Perturb, when non-nil, installs engine schedule fuzzing
	// (conformance harness only; nil leaves runs byte-identical).
	Perturb *sim.Perturbation
	// Faults, when non-nil, installs network fault injection.
	Faults *netsim.Faults
}

// Result summarizes one run.
type Result struct {
	// Elapsed is the total simulated solve time.
	Elapsed sim.Time
	// PerIter is Elapsed / Iters.
	PerIter sim.Time
	// Comm summarizes the recorded halo messages.
	Comm trace.Summary
	// Matrix is the per-(src, dst) halo traffic heat map.
	Matrix *trace.TrafficMatrix
	// Checksum is the sum of all interior cells after the run
	// (Verify mode only), identical across variants.
	Checksum float64
	// Ranks is the number of processes used.
	Ranks int
	// EventDigest is the engine's event-order fingerprint
	// (sim.Engine.Digest) captured after the run; the shard-determinism
	// suite compares it across shard counts.
	EventDigest uint64
}

func (c Config) validate() error {
	if c.Machine == nil {
		return fmt.Errorf("stencil: nil machine")
	}
	if c.Grid < 1 || c.Iters < 1 || c.PX < 1 || c.PY < 1 {
		return fmt.Errorf("stencil: bad config %+v", c)
	}
	if c.Grid%c.PX != 0 || c.Grid%c.PY != 0 {
		return fmt.Errorf("stencil: grid %d not divisible by process grid %dx%d", c.Grid, c.PX, c.PY)
	}
	return nil
}

// ranks and neighbor helpers ------------------------------------------------

type layout struct {
	px, py, nx, ny int // process grid; local tile size (nx columns, ny rows)
}

func (l layout) coords(rank int) (rx, ry int) { return rank % l.px, rank / l.px }

// neighbors returns the ranks of west, east, north, south (or -1).
func (l layout) neighbors(rank int) [4]int {
	rx, ry := l.coords(rank)
	out := [4]int{-1, -1, -1, -1}
	if rx > 0 {
		out[0] = rank - 1
	}
	if rx < l.px-1 {
		out[1] = rank + 1
	}
	if ry > 0 {
		out[2] = rank - l.px
	}
	if ry < l.py-1 {
		out[3] = rank + l.px
	}
	return out
}

// haloBytes returns the message size toward each neighbor direction:
// west/east carry a column (ny cells), north/south a row (nx cells).
func (l layout) haloBytes(dir int) int64 {
	if dir < 2 {
		return int64(8 * l.ny)
	}
	return int64(8 * l.nx)
}

// computeTime is the per-iteration local update cost for one rank.
func computeTime(l layout, cfg Config) sim.Time {
	cells := float64(l.nx) * float64(l.ny)
	if cfg.Machine.Kind == machine.GPU && cfg.Machine.GPU != nil {
		g := cfg.Machine.GPU
		return g.KernelLaunch + sim.FromSeconds(cells/(CPUCellRate*g.ComputeScale))
	}
	return sim.FromSeconds(cells / CPUCellRate)
}

// tile is a local grid with one ghost ring (Verify mode).
type tile struct {
	nx, ny int
	cur    []float64
	next   []float64
}

func newTile(nx, ny int) *tile {
	return &tile{nx: nx, ny: ny,
		cur:  make([]float64, (nx+2)*(ny+2)),
		next: make([]float64, (nx+2)*(ny+2)),
	}
}

func (t *tile) idx(i, j int) int { return (j+1)*(t.nx+2) + (i + 1) }

// initTile fills the tile with the deterministic global initial
// condition (a function of global coordinates).
func (t *tile) initTile(l layout, rank, grid int) {
	rx, ry := l.coords(rank)
	for j := 0; j < t.ny; j++ {
		for i := 0; i < t.nx; i++ {
			gi := rx*t.nx + i
			gj := ry*t.ny + j
			t.cur[t.idx(i, j)] = initial(gi, gj, grid)
		}
	}
}

func initial(gi, gj, grid int) float64 {
	return math.Sin(float64(gi+1)*0.37) * math.Cos(float64(gj+1)*0.23)
}

// step performs one Jacobi update of the interior using the ghost
// ring and swaps buffers.
func (t *tile) step() {
	w := t.nx + 2
	for j := 0; j < t.ny; j++ {
		for i := 0; i < t.nx; i++ {
			c := t.idx(i, j)
			t.next[c] = 0.25 * (t.cur[c-1] + t.cur[c+1] + t.cur[c-w] + t.cur[c+w])
		}
	}
	t.cur, t.next = t.next, t.cur
}

// halo extraction and injection. Directions: 0 west, 1 east, 2 north,
// 3 south.
func (t *tile) extract(dir int) []float64 {
	switch dir {
	case 0:
		out := make([]float64, t.ny)
		for j := 0; j < t.ny; j++ {
			out[j] = t.cur[t.idx(0, j)]
		}
		return out
	case 1:
		out := make([]float64, t.ny)
		for j := 0; j < t.ny; j++ {
			out[j] = t.cur[t.idx(t.nx-1, j)]
		}
		return out
	case 2:
		out := make([]float64, t.nx)
		for i := 0; i < t.nx; i++ {
			out[i] = t.cur[t.idx(i, 0)]
		}
		return out
	default:
		out := make([]float64, t.nx)
		for i := 0; i < t.nx; i++ {
			out[i] = t.cur[t.idx(i, t.ny-1)]
		}
		return out
	}
}

// inject writes a received halo into the ghost ring. dir is the
// direction the data came FROM (0 = from west neighbor -> west ghost
// column).
func (t *tile) inject(dir int, data []float64) {
	switch dir {
	case 0:
		for j := 0; j < t.ny; j++ {
			t.cur[t.idx(-1, j)] = data[j]
		}
	case 1:
		for j := 0; j < t.ny; j++ {
			t.cur[t.idx(t.nx, j)] = data[j]
		}
	case 2:
		for i := 0; i < t.nx; i++ {
			t.cur[t.idx(i, -1)] = data[i]
		}
	default:
		for i := 0; i < t.nx; i++ {
			t.cur[t.idx(i, t.ny)] = data[i]
		}
	}
}

func (t *tile) checksum() float64 {
	s := 0.0
	for j := 0; j < t.ny; j++ {
		for i := 0; i < t.nx; i++ {
			s += t.cur[t.idx(i, j)]
		}
	}
	return s
}

// opposite maps a direction to the neighbor's view of it.
func opposite(dir int) int { return dir ^ 1 }

// SerialReference runs the same Jacobi iteration on a single global
// grid, returning its checksum — the ground truth for Verify runs.
func SerialReference(grid, iters int) float64 {
	t := newTile(grid, grid)
	t.initTile(layout{px: 1, py: 1, nx: grid, ny: grid}, 0, grid)
	for k := 0; k < iters; k++ {
		t.step()
	}
	return t.checksum()
}
