package stencil

import (
	"math"
	"testing"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
)

func mc(t *testing.T, name string) *machine.Config {
	t.Helper()
	c, err := machine.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidate(t *testing.T) {
	pm := mc(t, "perlmutter-cpu")
	bad := []Config{
		{Machine: nil, Grid: 64, Iters: 1, PX: 2, PY: 2},
		{Machine: pm, Grid: 0, Iters: 1, PX: 2, PY: 2},
		{Machine: pm, Grid: 64, Iters: 0, PX: 2, PY: 2},
		{Machine: pm, Grid: 65, Iters: 1, PX: 2, PY: 2}, // not divisible
	}
	for _, c := range bad {
		if _, err := Run(c); err == nil {
			t.Fatalf("config %+v should fail", c)
		}
	}
}

func TestLayoutNeighbors(t *testing.T) {
	l := layout{px: 3, py: 2, nx: 4, ny: 4}
	// Rank 0 = corner: only east and south.
	n0 := l.neighbors(0)
	if n0[0] != -1 || n0[1] != 1 || n0[2] != -1 || n0[3] != 3 {
		t.Fatalf("corner neighbors = %v", n0)
	}
	// Rank 4 = middle bottom: west, east, north.
	n4 := l.neighbors(4)
	if n4[0] != 3 || n4[1] != 5 || n4[2] != 1 || n4[3] != -1 {
		t.Fatalf("rank 4 neighbors = %v", n4)
	}
}

func TestSerialReferenceConverges(t *testing.T) {
	// Jacobi averaging with zero boundary decays toward zero.
	a := SerialReference(32, 1)
	b := SerialReference(32, 50)
	if math.Abs(b) >= math.Abs(a) {
		t.Fatalf("no decay: %v -> %v", a, b)
	}
}

func TestTwoSidedMatchesSerial(t *testing.T) {
	cfg := Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Grid: 48, Iters: 5, PX: 4, PY: 4, Verify: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := SerialReference(48, 5)
	if math.Abs(res.Checksum-want) > 1e-9 {
		t.Fatalf("checksum %v, serial %v", res.Checksum, want)
	}
}

func TestOneSidedMatchesSerial(t *testing.T) {
	cfg := Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.OneSided, Grid: 48, Iters: 5, PX: 4, PY: 4, Verify: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := SerialReference(48, 5)
	if math.Abs(res.Checksum-want) > 1e-9 {
		t.Fatalf("checksum %v, serial %v", res.Checksum, want)
	}
}

func TestGPUMatchesSerial(t *testing.T) {
	cfg := Config{Machine: mc(t, "perlmutter-gpu"), Transport: comm.Shmem, Grid: 48, Iters: 6, PX: 2, PY: 2, Verify: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := SerialReference(48, 6)
	if math.Abs(res.Checksum-want) > 1e-9 {
		t.Fatalf("checksum %v, serial %v", res.Checksum, want)
	}
}

func TestGPURejectsCPUMachine(t *testing.T) {
	cfg := Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.Shmem, Grid: 16, Iters: 1, PX: 2, PY: 2}
	if _, err := Run(cfg); err == nil {
		t.Fatal("shmem transport on a CPU machine should fail")
	}
}

func TestMsgsPerSyncIsFour(t *testing.T) {
	// Table II: stencil has 4 msgs/sync for interior ranks. On a
	// 4x4 grid the average over edge ranks is 3, interior 4.
	cfg := Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Grid: 64, Iters: 3, PX: 4, PY: 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 16 ranks x 3 iters syncs; total messages = 2*edges*iters =
	// 2*(2*3*4)*3.
	if res.Comm.Syncs != 48 {
		t.Fatalf("syncs = %d", res.Comm.Syncs)
	}
	if res.Comm.Messages != 144 {
		t.Fatalf("messages = %d, want 144", res.Comm.Messages)
	}
	if res.Comm.MsgsPerSync < 2.5 || res.Comm.MsgsPerSync > 4.0 {
		t.Fatalf("msg/sync = %.2f, want ~3-4", res.Comm.MsgsPerSync)
	}
}

func TestTwoAndOneSidedComparableOnCPU(t *testing.T) {
	// §III-A: stencils are bandwidth/compute-bound, so one- and
	// two-sided perform about equally on CPUs.
	cfg := Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Grid: 2048, Iters: 4, PX: 4, PY: 4}
	two, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = comm.OneSided
	one, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(one.Elapsed) / float64(two.Elapsed)
	if ratio < 0.9 || ratio > 1.2 {
		t.Fatalf("one-sided/two-sided = %.2f, want ~1 (both compute-bound)", ratio)
	}
}

func TestGPUFasterThanCPU(t *testing.T) {
	// Fig 5: GPUs win from parallelism and bandwidth.
	cpu, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Grid: 2048, Iters: 4, PX: 4, PY: 1})
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := Run(Config{Machine: mc(t, "perlmutter-gpu"), Transport: comm.Shmem, Grid: 2048, Iters: 4, PX: 4, PY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Elapsed >= cpu.Elapsed {
		t.Fatalf("GPU (%v) should beat CPU (%v) at equal rank count", gpu.Elapsed, cpu.Elapsed)
	}
	speedup := float64(cpu.Elapsed) / float64(gpu.Elapsed)
	if speedup < 5 {
		t.Fatalf("GPU speedup = %.1fx, want substantial", speedup)
	}
}

func TestStrongScaling(t *testing.T) {
	// More ranks -> less time (compute-dominated regime).
	base, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Grid: 2048, Iters: 3, PX: 2, PY: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Grid: 2048, Iters: 3, PX: 8, PY: 8})
	if err != nil {
		t.Fatal(err)
	}
	if big.Elapsed >= base.Elapsed {
		t.Fatalf("no strong scaling: 4 ranks %v vs 64 ranks %v", base.Elapsed, big.Elapsed)
	}
	if sp := float64(base.Elapsed) / float64(big.Elapsed); sp < 4 {
		t.Fatalf("scaling 4->64 ranks only %.1fx", sp)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []float64{0, -1.5, math.Pi, 1e300, math.Inf(1)}
	out := decodeFloats(encodeFloats(in))
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("round trip broke at %d: %v != %v", i, out[i], in[i])
		}
	}
}

func TestHaloExtractInject(t *testing.T) {
	a := newTile(3, 2)
	for j := 0; j < 2; j++ {
		for i := 0; i < 3; i++ {
			a.cur[a.idx(i, j)] = float64(10*j + i)
		}
	}
	east := a.extract(1)
	if east[0] != 2 || east[1] != 12 {
		t.Fatalf("east halo = %v", east)
	}
	b := newTile(3, 2)
	b.inject(0, east) // east halo of a becomes west ghost of b
	if b.cur[b.idx(-1, 0)] != 2 || b.cur[b.idx(-1, 1)] != 12 {
		t.Fatal("inject west ghost failed")
	}
}

func TestGPUInitiatedBeatsHostStaged(t *testing.T) {
	// §I: host-staged communication (device->host, MPI, host->device)
	// is the traditional multi-GPU path; GPU-initiated NVSHMEM beats
	// it on latency. the two-sided transport on a GPU machine IS the host-staged
	// variant: the transport is host-initiated MPI routed through the
	// host node, while compute still runs at GPU rates.
	cfg := Config{Machine: mc(t, "perlmutter-gpu"), Transport: comm.TwoSided, Grid: 2048, Iters: 4, PX: 2, PY: 2}
	staged, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = comm.Shmem
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Elapsed >= staged.Elapsed {
		t.Fatalf("GPU-initiated (%v) should beat host-staged (%v)", direct.Elapsed, staged.Elapsed)
	}
	// Host-staged correctness: verified numerics still hold.
	v := Config{Machine: mc(t, "perlmutter-gpu"), Transport: comm.TwoSided, Grid: 48, Iters: 5, PX: 2, PY: 2, Verify: true}
	res, err := Run(v)
	if err != nil {
		t.Fatal(err)
	}
	want := SerialReference(48, 5)
	if d := res.Checksum - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("host-staged checksum mismatch: %v vs %v", res.Checksum, want)
	}
}

func TestHaloTrafficMatrixIsNeighborOnly(t *testing.T) {
	cfg := Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Grid: 64, Iters: 2, PX: 4, PY: 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix == nil {
		t.Fatal("no traffic matrix")
	}
	l := layout{px: 4, py: 4, nx: 16, ny: 16}
	for s := 0; s < 16; s++ {
		nbrs := l.neighbors(s)
		isNbr := map[int]bool{}
		for _, n := range nbrs {
			if n >= 0 {
				isNbr[n] = true
			}
		}
		for d := 0; d < 16; d++ {
			if res.Matrix.Messages[s][d] > 0 && !isNbr[d] {
				t.Fatalf("rank %d sent halo traffic to non-neighbor %d", s, d)
			}
		}
	}
}
