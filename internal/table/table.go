// Package table renders aligned plain-text tables for the experiment
// harness (Table I, Table II, and per-figure result listings).
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple header + rows text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded, long rows truncated to
// the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowV appends a row of arbitrary values formatted with %v.
func (t *Table) AddRowV(cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprint(c)
	}
	t.AddRow(parts...)
}

// Render returns the formatted table.
func (t *Table) Render() string {
	var b strings.Builder
	t.RenderTo(&b)
	return b.String()
}

// RenderTo writes the formatted table to w.
func (t *Table) RenderTo(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	seps := make([]string, len(t.Headers))
	for i, wd := range widths {
		seps[i] = strings.Repeat("-", wd)
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
}
