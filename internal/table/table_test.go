package table

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("Machines", "Name", "GB/s")
	tb.AddRow("perlmutter", "32")
	tb.AddRow("x", "100")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Machines" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Fatalf("separator = %q", lines[2])
	}
	// All data rows align: the GB/s column starts at the same offset.
	idx1 := strings.Index(lines[3], "32")
	idx2 := strings.Index(lines[4], "100")
	if idx1 != idx2 {
		t.Fatalf("misaligned columns: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestShortAndLongRows(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRow("only-a")
	tb.AddRow("a", "b", "ignored-extra")
	out := tb.Render()
	if strings.Contains(out, "ignored-extra") {
		t.Fatal("extra cells should be dropped")
	}
	if !strings.Contains(out, "only-a") {
		t.Fatal("short row missing")
	}
}

func TestAddRowV(t *testing.T) {
	tb := New("", "N", "F")
	tb.AddRowV(42, 3.5)
	if out := tb.Render(); !strings.Contains(out, "42") || !strings.Contains(out, "3.5") {
		t.Fatalf("AddRowV output:\n%s", out)
	}
}
