package trace

import (
	"fmt"
	"sort"
	"strings"

	"msgroofline/internal/sim"
)

// TrafficMatrix aggregates recorded events into per-(src, dst) byte
// and message counts — the communication heat map of a run, useful
// for spotting topology hotspots (e.g. Summit's X-Bus pairs).
type TrafficMatrix struct {
	Ranks    int
	Bytes    [][]int64
	Messages [][]int64
}

// Matrix builds the traffic matrix for `ranks` endpoints; events
// referencing out-of-range ranks are ignored.
func (r *Recorder) Matrix(ranks int) *TrafficMatrix {
	m := &TrafficMatrix{Ranks: ranks}
	m.Bytes = make([][]int64, ranks)
	m.Messages = make([][]int64, ranks)
	for i := range m.Bytes {
		m.Bytes[i] = make([]int64, ranks)
		m.Messages[i] = make([]int64, ranks)
	}
	for _, e := range r.events {
		if e.Src < 0 || e.Src >= ranks || e.Dst < 0 || e.Dst >= ranks {
			continue
		}
		m.Bytes[e.Src][e.Dst] += e.Bytes
		m.Messages[e.Src][e.Dst]++
	}
	return m
}

// Pair is one (src, dst) traffic entry.
type Pair struct {
	Src, Dst int
	Bytes    int64
	Messages int64
}

// Hottest returns the top-k pairs by byte volume, descending.
func (m *TrafficMatrix) Hottest(k int) []Pair {
	var all []Pair
	for s := 0; s < m.Ranks; s++ {
		for d := 0; d < m.Ranks; d++ {
			if m.Messages[s][d] > 0 {
				all = append(all, Pair{Src: s, Dst: d, Bytes: m.Bytes[s][d], Messages: m.Messages[s][d]})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Bytes != all[j].Bytes {
			return all[i].Bytes > all[j].Bytes
		}
		if all[i].Src != all[j].Src {
			return all[i].Src < all[j].Src
		}
		return all[i].Dst < all[j].Dst
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Imbalance is the max/mean ratio of per-pair byte volume across
// pairs that communicated at all (1 = perfectly balanced).
func (m *TrafficMatrix) Imbalance() float64 {
	var max, sum int64
	n := 0
	for s := 0; s < m.Ranks; s++ {
		for d := 0; d < m.Ranks; d++ {
			if m.Messages[s][d] == 0 {
				continue
			}
			n++
			sum += m.Bytes[s][d]
			if m.Bytes[s][d] > max {
				max = m.Bytes[s][d]
			}
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(n)
	return float64(max) / mean
}

// CrossFraction returns the fraction of bytes flowing between ranks
// that the predicate classifies as "crossing" (e.g. different
// sockets/islands).
func (m *TrafficMatrix) CrossFraction(crosses func(src, dst int) bool) float64 {
	var cross, total int64
	for s := 0; s < m.Ranks; s++ {
		for d := 0; d < m.Ranks; d++ {
			total += m.Bytes[s][d]
			if crosses(s, d) {
				cross += m.Bytes[s][d]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cross) / float64(total)
}

// String renders a compact heat map (byte volumes, KiB) for small
// rank counts.
func (m *TrafficMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traffic matrix (%d ranks, KiB):\n", m.Ranks)
	show := m.Ranks
	if show > 16 {
		show = 16
	}
	for s := 0; s < show; s++ {
		fmt.Fprintf(&b, "%4d:", s)
		for d := 0; d < show; d++ {
			fmt.Fprintf(&b, " %6.1f", float64(m.Bytes[s][d])/1024)
		}
		fmt.Fprintln(&b)
	}
	if m.Ranks > show {
		fmt.Fprintf(&b, "  (truncated to %dx%d)\n", show, show)
	}
	return b.String()
}

// BisectionLoad estimates the byte volume crossing a rank-space cut
// at `cut` (ranks < cut vs >= cut), per direction.
func (m *TrafficMatrix) BisectionLoad(cut int) (forward, backward int64) {
	for s := 0; s < m.Ranks; s++ {
		for d := 0; d < m.Ranks; d++ {
			if s < cut && d >= cut {
				forward += m.Bytes[s][d]
			}
			if s >= cut && d < cut {
				backward += m.Bytes[s][d]
			}
		}
	}
	return forward, backward
}

// MeanRate converts total recorded bytes into GB/s over the elapsed
// span.
func (m *TrafficMatrix) MeanRate(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	var total int64
	for s := range m.Bytes {
		for d := range m.Bytes[s] {
			total += m.Bytes[s][d]
		}
	}
	return float64(total) / elapsed.Seconds() / 1e9
}
