package trace

import (
	"strings"
	"testing"

	"msgroofline/internal/sim"
)

func sampleRecorder() *Recorder {
	r := New()
	r.Record(Event{Src: 0, Dst: 1, Bytes: 1000})
	r.Record(Event{Src: 0, Dst: 1, Bytes: 500})
	r.Record(Event{Src: 1, Dst: 0, Bytes: 200})
	r.Record(Event{Src: 2, Dst: 3, Bytes: 4000})
	r.Record(Event{Src: 9, Dst: 0, Bytes: 99999}) // out of range for ranks=4
	return r
}

func TestMatrixAggregation(t *testing.T) {
	m := sampleRecorder().Matrix(4)
	if m.Bytes[0][1] != 1500 || m.Messages[0][1] != 2 {
		t.Fatalf("0->1: %d bytes, %d msgs", m.Bytes[0][1], m.Messages[0][1])
	}
	if m.Bytes[1][0] != 200 {
		t.Fatalf("1->0 = %d", m.Bytes[1][0])
	}
	if m.Bytes[2][3] != 4000 {
		t.Fatalf("2->3 = %d", m.Bytes[2][3])
	}
	// Out-of-range events ignored.
	var total int64
	for s := range m.Bytes {
		for d := range m.Bytes[s] {
			total += m.Bytes[s][d]
		}
	}
	if total != 5700 {
		t.Fatalf("total = %d", total)
	}
}

func TestHottestOrdering(t *testing.T) {
	m := sampleRecorder().Matrix(4)
	hot := m.Hottest(2)
	if len(hot) != 2 {
		t.Fatalf("hottest = %d entries", len(hot))
	}
	if hot[0].Src != 2 || hot[0].Dst != 3 || hot[0].Bytes != 4000 {
		t.Fatalf("hottest[0] = %+v", hot[0])
	}
	if hot[1].Bytes != 1500 {
		t.Fatalf("hottest[1] = %+v", hot[1])
	}
	// k larger than entries: all returned.
	if got := len(m.Hottest(100)); got != 3 {
		t.Fatalf("hottest(100) = %d", got)
	}
}

func TestImbalance(t *testing.T) {
	m := sampleRecorder().Matrix(4)
	// Pairs: 1500, 200, 4000 -> mean 1900, max 4000.
	want := 4000.0 / 1900.0
	if got := m.Imbalance(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("imbalance = %v, want %v", got, want)
	}
	if (New()).Matrix(4).Imbalance() != 0 {
		t.Fatal("empty matrix imbalance should be 0")
	}
}

func TestCrossFraction(t *testing.T) {
	m := sampleRecorder().Matrix(4)
	// "Socket" boundary between ranks 0,1 and 2,3.
	frac := m.CrossFraction(func(s, d int) bool { return (s < 2) != (d < 2) })
	if frac != 0 {
		t.Fatalf("cross fraction = %v, want 0 (no cross traffic)", frac)
	}
	m.Bytes[0][3] = 5700 // equal to all existing traffic
	m.Messages[0][3] = 1
	frac = m.CrossFraction(func(s, d int) bool { return (s < 2) != (d < 2) })
	if frac != 0.5 {
		t.Fatalf("cross fraction = %v, want 0.5", frac)
	}
}

func TestBisectionLoad(t *testing.T) {
	m := sampleRecorder().Matrix(4)
	fwd, bwd := m.BisectionLoad(2)
	if fwd != 0 || bwd != 0 {
		t.Fatalf("bisection = %d/%d, want 0/0", fwd, bwd)
	}
	fwd, bwd = m.BisectionLoad(1)
	// 0->1 crosses forward (1500); 1->0 crosses backward (200).
	if fwd != 1500 || bwd != 200 {
		t.Fatalf("bisection at 1 = %d/%d", fwd, bwd)
	}
}

func TestMatrixStringAndRate(t *testing.T) {
	m := sampleRecorder().Matrix(4)
	s := m.String()
	if !strings.Contains(s, "traffic matrix") {
		t.Fatalf("string = %q", s)
	}
	rate := m.MeanRate(sim.Microsecond)
	// 5700 B / 1 us = 5.7 GB/s.
	if rate < 5.69 || rate > 5.71 {
		t.Fatalf("rate = %v", rate)
	}
	if m.MeanRate(0) != 0 {
		t.Fatal("zero elapsed should give zero rate")
	}
}
