// Package trace records message-level events from workload runs and
// derives the quantities the Message Roofline model plots: message
// sizes, messages per synchronization, sustained bandwidth, and
// per-message latency. Workloads call Record once per application
// message and Sync once per synchronization point; the summary then
// places the workload as a dot on the roofline.
package trace

import (
	"fmt"
	"sort"
	"sync"

	"msgroofline/internal/sim"
)

// Event is one application-level message.
type Event struct {
	Src, Dst int
	Bytes    int64
	Issue    sim.Time // when the sender issued the message
	Deliver  sim.Time // when the last byte (or signal) landed
}

// Latency is the end-to-end time of the message.
func (e Event) Latency() sim.Time { return e.Deliver - e.Issue }

// Recorder accumulates events and synchronization points for one run.
// Record and Sync are called from delivery hooks, which under the
// coupled engine's parallel windows may run on concurrent node-group
// goroutines, so both take a mutex; every derived quantity (Summarize,
// SizeHistogram, Matrix) is an order-invariant aggregation, so the
// nondeterministic append order never reaches an output. Readers run
// after the simulation joins its workers and need no locking.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	syncs  int
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// pool recycles recorders (and, more importantly, their event buffers)
// across runs: a simulation that traces allocates only while a run's
// message count exceeds every previous run's, then reaches steady
// state at zero allocations per recorded event.
var pool = sync.Pool{New: func() any { return &Recorder{} }}

// Get returns an empty recorder, reusing a pooled event buffer when
// one is available. Pair with Release when the recorder's data has
// been fully consumed.
func Get() *Recorder { return pool.Get().(*Recorder) }

// Release resets r and returns it to the pool. The caller must not
// touch r — or any Events() slice obtained from it — afterwards.
func Release(r *Recorder) {
	if r == nil {
		return
	}
	r.Reset()
	pool.Put(r)
}

// Reset empties the recorder, keeping the event buffer's capacity.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.syncs = 0
}

// Record adds one message event.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Sync notes one synchronization point (a Waitall, fence, or signal
// wait completing).
func (r *Recorder) Sync() {
	r.mu.Lock()
	r.syncs++
	r.mu.Unlock()
}

// Events returns the recorded events.
func (r *Recorder) Events() []Event { return r.events }

// Syncs returns the number of synchronization points recorded.
func (r *Recorder) Syncs() int { return r.syncs }

// Summary is the roofline-relevant digest of a run.
type Summary struct {
	Messages    int
	Syncs       int
	TotalBytes  int64
	MinBytes    int64
	MaxBytes    int64
	MeanBytes   float64
	MedianBytes float64
	// MsgsPerSync is Messages / Syncs — the roofline's concurrency
	// coordinate (0 when no syncs were recorded).
	MsgsPerSync float64
	// MeanLatency is the mean end-to-end per-message latency.
	MeanLatency sim.Time
	// P99Latency is the 99th-percentile message latency.
	P99Latency sim.Time
	// SustainedGBs is TotalBytes over the supplied elapsed time.
	SustainedGBs float64
}

// Summarize computes a Summary given the run's elapsed simulated time.
func (r *Recorder) Summarize(elapsed sim.Time) Summary {
	s := Summary{Messages: len(r.events), Syncs: r.syncs}
	if len(r.events) == 0 {
		return s
	}
	sizes := make([]int64, 0, len(r.events))
	lats := make([]sim.Time, 0, len(r.events))
	s.MinBytes = r.events[0].Bytes
	for _, e := range r.events {
		s.TotalBytes += e.Bytes
		if e.Bytes < s.MinBytes {
			s.MinBytes = e.Bytes
		}
		if e.Bytes > s.MaxBytes {
			s.MaxBytes = e.Bytes
		}
		sizes = append(sizes, e.Bytes)
		lats = append(lats, e.Latency())
	}
	s.MeanBytes = float64(s.TotalBytes) / float64(len(r.events))
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	mid := len(sizes) / 2
	if len(sizes)%2 == 1 {
		s.MedianBytes = float64(sizes[mid])
	} else {
		s.MedianBytes = float64(sizes[mid-1]+sizes[mid]) / 2
	}
	if r.syncs > 0 {
		s.MsgsPerSync = float64(len(r.events)) / float64(r.syncs)
	}
	var tot sim.Time
	for _, l := range lats {
		tot += l
	}
	s.MeanLatency = tot / sim.Time(len(lats))
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := (99*len(lats) + 99) / 100
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	s.P99Latency = lats[idx]
	if elapsed > 0 {
		s.SustainedGBs = float64(s.TotalBytes) / elapsed.Seconds() / 1e9
	}
	return s
}

// SizeHistogram buckets message sizes by power of two and returns
// (lower bound, count) pairs in ascending order.
func (r *Recorder) SizeHistogram() []SizeBucket {
	counts := map[int64]int{}
	for _, e := range r.events {
		b := int64(1)
		for b*2 <= e.Bytes {
			b *= 2
		}
		counts[b]++
	}
	var out []SizeBucket
	for b, c := range counts {
		out = append(out, SizeBucket{Floor: b, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Floor < out[j].Floor })
	return out
}

// SizeBucket is one power-of-two size class.
type SizeBucket struct {
	Floor int64
	Count int
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("msgs=%d syncs=%d msg/sync=%.1f bytes[min/med/max]=%d/%.0f/%d lat[mean]=%v bw=%.2fGB/s",
		s.Messages, s.Syncs, s.MsgsPerSync, s.MinBytes, s.MedianBytes, s.MaxBytes, s.MeanLatency, s.SustainedGBs)
}
