package trace

import (
	"testing"

	"msgroofline/internal/sim"
)

func TestEmptySummary(t *testing.T) {
	r := New()
	s := r.Summarize(sim.Second)
	if s.Messages != 0 || s.TotalBytes != 0 || s.SustainedGBs != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummaryBasics(t *testing.T) {
	r := New()
	r.Record(Event{Src: 0, Dst: 1, Bytes: 100, Issue: 0, Deliver: sim.Microsecond})
	r.Record(Event{Src: 1, Dst: 0, Bytes: 300, Issue: 0, Deliver: 3 * sim.Microsecond})
	r.Sync()
	r.Sync()
	s := r.Summarize(sim.Microsecond) // 400 B in 1 us = 0.4 GB/s
	if s.Messages != 2 || s.Syncs != 2 {
		t.Fatalf("counts = %d/%d", s.Messages, s.Syncs)
	}
	if s.MsgsPerSync != 1 {
		t.Fatalf("msg/sync = %v", s.MsgsPerSync)
	}
	if s.TotalBytes != 400 || s.MinBytes != 100 || s.MaxBytes != 300 {
		t.Fatalf("bytes = %d/%d/%d", s.TotalBytes, s.MinBytes, s.MaxBytes)
	}
	if s.MeanBytes != 200 || s.MedianBytes != 200 {
		t.Fatalf("mean/median = %v/%v", s.MeanBytes, s.MedianBytes)
	}
	if s.MeanLatency != 2*sim.Microsecond {
		t.Fatalf("mean latency = %v", s.MeanLatency)
	}
	if s.SustainedGBs < 0.39 || s.SustainedGBs > 0.41 {
		t.Fatalf("bw = %v", s.SustainedGBs)
	}
	if s.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestMedianOdd(t *testing.T) {
	r := New()
	for _, b := range []int64{10, 1000, 50} {
		r.Record(Event{Bytes: b, Deliver: sim.Microsecond})
	}
	if s := r.Summarize(sim.Second); s.MedianBytes != 50 {
		t.Fatalf("median = %v, want 50", s.MedianBytes)
	}
}

func TestP99Latency(t *testing.T) {
	r := New()
	for i := 1; i <= 100; i++ {
		r.Record(Event{Bytes: 8, Issue: 0, Deliver: sim.Time(i) * sim.Microsecond})
	}
	s := r.Summarize(sim.Second)
	if s.P99Latency < 99*sim.Microsecond {
		t.Fatalf("p99 = %v", s.P99Latency)
	}
}

func TestSizeHistogram(t *testing.T) {
	r := New()
	for _, b := range []int64{1, 2, 3, 4, 7, 8, 1024} {
		r.Record(Event{Bytes: b})
	}
	h := r.SizeHistogram()
	want := map[int64]int{1: 1, 2: 2, 4: 2, 8: 1, 1024: 1}
	if len(h) != len(want) {
		t.Fatalf("histogram = %+v", h)
	}
	for _, b := range h {
		if want[b.Floor] != b.Count {
			t.Fatalf("bucket %d = %d, want %d", b.Floor, b.Count, want[b.Floor])
		}
	}
	// Ascending order.
	for i := 1; i < len(h); i++ {
		if h[i].Floor <= h[i-1].Floor {
			t.Fatal("histogram not sorted")
		}
	}
}

func TestNoSyncsMeansZeroMsgsPerSync(t *testing.T) {
	r := New()
	r.Record(Event{Bytes: 8, Deliver: 1})
	if s := r.Summarize(sim.Second); s.MsgsPerSync != 0 {
		t.Fatalf("msg/sync = %v, want 0 without syncs", s.MsgsPerSync)
	}
}

func TestPoolReuseAndReset(t *testing.T) {
	r := Get()
	r.Record(Event{Src: 0, Dst: 1, Bytes: 64, Issue: 0, Deliver: 10})
	r.Sync()
	if len(r.Events()) != 1 || r.Syncs() != 1 {
		t.Fatalf("recorder state: %d events, %d syncs", len(r.Events()), r.Syncs())
	}
	r.Reset()
	if len(r.Events()) != 0 || r.Syncs() != 0 {
		t.Fatal("Reset left state behind")
	}
	Release(r)
	// A recorder from the pool must always come back empty.
	r2 := Get()
	if len(r2.Events()) != 0 || r2.Syncs() != 0 {
		t.Fatalf("pooled recorder not empty: %d events, %d syncs", len(r2.Events()), r2.Syncs())
	}
	Release(r2)
	// Releasing nil is a safe no-op (transports without a tap).
	Release(nil)
}

// BenchmarkTraceSteadyStateRecord is the CI-gated allocation budget of
// the tracing tap: once the pooled event buffer has grown to the run's
// message count, a full acquire/record/sync/release cycle — what every
// traced simulation adds over an untraced one — must allocate nothing.
func BenchmarkTraceSteadyStateRecord(b *testing.B) {
	const msgs = 1024
	warm := Get()
	for i := 0; i < msgs; i++ {
		warm.Record(Event{Src: 0, Dst: 1, Bytes: 64, Issue: sim.Time(i), Deliver: sim.Time(i + 5)})
	}
	Release(warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Get()
		for j := 0; j < msgs; j++ {
			r.Record(Event{Src: 0, Dst: 1, Bytes: 64, Issue: sim.Time(j), Deliver: sim.Time(j + 5)})
		}
		r.Sync()
		Release(r)
	}
}
